package main

import (
	"context"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"aspp/internal/bgp"
)

// TestLoadAgainstSink replays a small corpus at a local TCP sink that
// counts decoded frames, verifying the generator speaks the framed
// binary codec end to end.
func TestLoadAgainstSink(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var frames atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		dec := bgp.NewStreamDecoder(conn)
		var u bgp.Update
		for dec.Next(&u) == nil {
			frames.Add(1)
		}
	}()

	var sb strings.Builder
	err = run(context.Background(), []string{
		"-connect", l.Addr().String(), "-n", "400", "-events", "20", "-updates", "5000",
	}, &sb)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, sb.String())
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("sink never saw the stream end")
	}
	if got := frames.Load(); got != 5000 {
		t.Fatalf("sink decoded %d frames, want 5000", got)
	}
	if !strings.Contains(sb.String(), "updates/sec") {
		t.Errorf("no throughput report:\n%s", sb.String())
	}
}

func TestLoadBadInputs(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), nil, &sb); err == nil {
		t.Error("missing -connect/-unix accepted")
	}
	if err := run(context.Background(), []string{"-connect", "x", "-unix", "y"}, &sb); err == nil {
		t.Error("both -connect and -unix accepted")
	}
	if err := run(context.Background(), []string{"-connect", "127.0.0.1:1"}, &sb); err == nil {
		t.Error("dial to a closed port succeeded")
	}
}
