package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDemo(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-demo", "-n", "500"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "attack:") {
		t.Errorf("missing attack summary:\n%s", out)
	}
	if strings.Contains(out, "WARNING") {
		t.Errorf("false positives on baseline:\n%s", out)
	}
	if !strings.Contains(out, "alarms after the attack") {
		t.Errorf("missing alarm summary:\n%s", out)
	}
	if strings.Contains(out, "NOT detected") {
		t.Errorf("demo attack went undetected:\n%s", out)
	}
}

func TestRunStream(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "updates.log")
	stream := `# two monitors watching one prefix
A|1|AS5|69.171.224.0/20|5 1 100 100 100
A|2|AS2|69.171.224.0/20|2 6 1 100 100 100
A|3|AS2|69.171.224.0/20|2 6 1 100
`
	if err := os.WriteFile(path, []byte(stream), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-updates", path, "-monitors", "2,5"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "ALARM[high] AS6") {
		t.Errorf("expected an alarm naming AS6:\n%s", out)
	}
	if !strings.Contains(out, "3 updates processed, 1 alarms") {
		t.Errorf("unexpected summary:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Error("no mode accepted")
	}
	if err := run([]string{"-updates", "x.log"}, &sb); err == nil {
		t.Error("missing -monitors accepted")
	}
	if err := run([]string{"-updates", "/nonexistent", "-monitors", "1"}, &sb); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"-updates", "/dev/null", "-monitors", "bogus"}, &sb); err == nil {
		t.Error("bad monitor list accepted")
	}
}

func TestRunDefense(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-defense", "-n", "500", "-budget", "6"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"strategy", "greedy", "top-degree", "victim-cone", "random"} {
		if !strings.Contains(out, want) {
			t.Errorf("defense output missing %q:\n%s", want, out)
		}
	}
}

func TestRunDefenseBadVictim(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-defense", "-victim", "bogus"}, &sb); err == nil {
		t.Error("bad victim accepted")
	}
}
