// Command asppdetect runs the ASPP-interception detection algorithm,
// either over a recorded BGP update stream (text or binary format from
// this repository's collector model) or as a synthetic end-to-end
// demonstration that simulates an attack and feeds the resulting updates
// through the detector.
//
// Usage:
//
//	asppdetect -demo
//	asppdetect -updates updates.log -monitors 7018,2914,3356
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net/netip"
	"os"
	"strings"

	"aspp"
	"aspp/internal/bgp"
	"aspp/internal/detect"
	"aspp/internal/experiment"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "asppdetect:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("asppdetect", flag.ContinueOnError)
	var (
		demo     = fs.Bool("demo", false, "simulate an attack and detect it end to end")
		def      = fs.Bool("defense", false, "compare victim monitor-placement strategies")
		n        = fs.Int("n", 2000, "topology size for -demo/-defense")
		seed     = fs.Int64("seed", 1, "random seed")
		budget   = fs.Int("budget", 10, "monitor budget for -defense")
		victim   = fs.String("victim", "auto", "victim ASN for -defense ('auto': a multihomed stub)")
		updates  = fs.String("updates", "", "update stream file (text format; '-' for stdin)")
		monitors = fs.String("monitors", "", "comma-separated monitor ASNs for -updates mode")
		counters = fs.Bool("counters", false, "report propagation telemetry for -demo")
	)
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *demo:
		return runDemo(*n, *seed, *counters, out)
	case *def:
		return runDefense(*n, *seed, *budget, *victim, out)
	case *updates != "":
		return runStream(*updates, *monitors, out)
	default:
		return errors.New("need -demo, -defense or -updates (see -h)")
	}
}

// runDefense compares self-defense monitor placement strategies for one
// victim (the paper's §VIII future work).
func runDefense(n int, seed int64, budget int, victimSpec string, out io.Writer) error {
	internet, err := aspp.NewInternet(aspp.WithSize(n), aspp.WithSeed(seed))
	if err != nil {
		return err
	}
	g := internet.Graph()
	var victim aspp.ASN
	if victimSpec == "auto" {
		for _, asn := range g.ASNs() {
			if g.IsStub(asn) && len(g.Providers(asn)) >= 2 {
				victim = asn
				break
			}
		}
		if victim == 0 {
			return errors.New("no multihomed stub to defend")
		}
	} else {
		victim, err = aspp.ParseASN(victimSpec)
		if err != nil {
			return err
		}
	}
	cfg := aspp.DefaultDefenseConfig(victim)
	cfg.Budget = budget
	cfg.Seed = seed
	outcomes, err := internet.CompareDefenses(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "victim %v (tier %d), budget %d monitors, %d evaluation attacks\n",
		victim, g.Tier(victim), budget, cfg.EvalAttacks)
	fmt.Fprintln(out, "strategy\tpct_detected")
	for _, o := range outcomes {
		fmt.Fprintf(out, "%s\t%.1f\n", o.Strategy, 100*o.DetectedFrac)
	}
	return nil
}

// runStream replays a recorded update stream through the detector.
// Without a topology, only high-confidence segment conflicts fire (the
// relationship hint rules need AS relationship data).
func runStream(path, monitorSpec string, out io.Writer) error {
	if monitorSpec == "" {
		return errors.New("-updates mode requires -monitors")
	}
	var mons []bgp.ASN
	for _, f := range strings.Split(monitorSpec, ",") {
		asn, err := bgp.ParseASN(f)
		if err != nil {
			return err
		}
		mons = append(mons, asn)
	}
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	ups, err := bgp.ReadUpdatesText(r)
	if err != nil {
		return err
	}
	det := detect.NewDetector(mons, nil)
	tracker := detect.NewIncidentTracker(0)
	alarmCount := 0
	for _, u := range ups {
		alarms := det.Observe(u)
		tracker.Track(u, alarms)
		for _, a := range alarms {
			alarmCount++
			fmt.Fprintf(out, "t=%d %s prefix=%v\n", u.Time, a, u.Prefix)
		}
	}
	fmt.Fprintf(out, "%d updates processed, %d alarms\n", len(ups), alarmCount)
	for _, inc := range tracker.Open() {
		fmt.Fprintln(out, inc)
	}
	return nil
}

// runDemo simulates one interception attack and replays the monitors'
// route changes through the streaming detector.
func runDemo(n int, seed int64, counters bool, out io.Writer) error {
	internet, err := aspp.NewInternet(aspp.WithSize(n), aspp.WithSeed(seed))
	if err != nil {
		return err
	}
	g := internet.Graph()
	victim, err := experiment.PickContentStub(g)
	if err != nil {
		return err
	}
	attacker, err := experiment.PickTier1ByDegree(g, 1)
	if err != nil {
		return err
	}
	var obs *aspp.Counters
	if counters {
		obs = new(aspp.Counters)
	}
	im, err := internet.SimulateAttackObs(aspp.Scenario{
		Victim: victim, Attacker: attacker, Prepend: 4,
	}, obs)
	if err != nil {
		return err
	}
	if obs != nil {
		defer func() { fmt.Fprintf(out, "counters: %s\n", obs.Snapshot()) }()
	}
	fmt.Fprintf(out, "attack: %v strips %v's prepends; %d ASes captured (%.1f%%)\n",
		attacker, victim, im.PollutedAfter, 100*im.After())

	monitors := g.TopByDegree(100)
	det := internet.NewDetector(monitors)
	prefix := netip.MustParsePrefix("69.171.224.0/20")

	// Feed the steady state, then the post-attack state.
	tm := uint64(0)
	feed := func(pathOf func(aspp.ASN) aspp.Path) int {
		alarms := 0
		for _, m := range monitors {
			p := pathOf(m)
			if p == nil {
				continue
			}
			tm++
			for _, a := range det.Observe(bgp.Update{
				Time: tm, Monitor: m, Type: bgp.Announce, Prefix: prefix, Path: p,
			}) {
				alarms++
				if alarms <= 10 {
					fmt.Fprintln(out, " ", a)
				}
			}
		}
		return alarms
	}
	if pre := feed(im.Baseline().PathOf); pre != 0 {
		fmt.Fprintf(out, "WARNING: %d alarms on the honest baseline (false positives)\n", pre)
	}
	alarms := feed(im.Attacked().PathOf)
	fmt.Fprintf(out, "%d alarms after the attack propagated\n", alarms)
	if alarms == 0 {
		fmt.Fprintln(out, "attack NOT detected by this monitor set")
	}
	return nil
}
