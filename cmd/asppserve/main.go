// Command asppserve runs the ASPP-interception detector as a streaming
// daemon (DESIGN §5g): updates arrive as binary frames over TCP or unix
// sockets, are sharded by prefix across detector instances, and alarms
// plus telemetry are exposed over HTTP.
//
// Usage:
//
//	asppserve -listen :4790 -http :8080 -monitors top40
//	asppserve -selftest -updates 500000
//
// The daemon derives its monitor set and relationship data from a
// generated topology (the same synthetic Internet the rest of the tool
// chain uses), so a paired cmd/asppload run against the same -n/-seed
// speaks the same monitor and prefix universe.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"aspp"
	"aspp/internal/bgp"
	"aspp/internal/collector"
	"aspp/internal/obs"
	"aspp/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "asppserve: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "asppserve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("asppserve", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 2000, "topology size backing the monitor set and relationships")
		seed     = fs.Int64("seed", 1, "topology seed")
		monSpec  = fs.String("monitors", "top40", "monitor set: topK (by degree) or comma-separated ASNs")
		shards   = fs.Int("shards", 0, "detector shards (0 = GOMAXPROCS)")
		depth    = fs.Int("depth", 4096, "per-shard ring depth in updates")
		batch    = fs.Int("batch", 256, "max updates drained per worker pass")
		policy   = fs.String("policy", "block", "full-ring policy: block (lossless) or drop (shed)")
		listen   = fs.String("listen", "", "TCP ingest address (e.g. :4790)")
		unixSock = fs.String("unix", "", "unix socket ingest path")
		httpAddr = fs.String("http", "", "HTTP address for /metrics, /alarms, /healthz")
		selftest = fs.Bool("selftest", false, "replay the churn simulator through the pipeline and report throughput")
		updates  = fs.Int64("updates", 200_000, "updates to replay in -selftest")
		events   = fs.Int("events", 60, "churn events behind the -selftest corpus")
		counters = fs.Bool("counters", false, "print telemetry counters on exit")
	)
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}

	pol, err := serve.ParsePolicy(*policy)
	if err != nil {
		return err
	}
	internet, err := aspp.NewInternet(aspp.WithSize(*n), aspp.WithSeed(*seed))
	if err != nil {
		return err
	}
	g := internet.Graph()
	monitors, err := parseMonitors(*monSpec, g)
	if err != nil {
		return err
	}
	obsCounters := &obs.Counters{}
	p, err := serve.NewPipeline(serve.Config{
		Shards: *shards, Depth: *depth, Batch: *batch, Policy: pol,
		Monitors: monitors, Rels: g, Counters: obsCounters,
	})
	if err != nil {
		return err
	}
	p.Start()
	defer p.Close()
	if *counters {
		defer func() {
			p.Stats() // records queue-peak and memory gauges into the counters
			fmt.Fprintf(out, "counters: %s\n", obsCounters.Snapshot())
		}()
	}

	if *selftest {
		return runSelftest(p, internet, monitors, *updates, *events, *seed, obsCounters, out)
	}
	if *listen == "" && *unixSock == "" {
		return errors.New("need -listen, -unix or -selftest (see -h)")
	}

	fmt.Fprintf(out, "asppserve: %d shards × depth %d, batch %d, policy %s, %d monitors (GOMAXPROCS %d)\n",
		p.Shards(), *depth, *batch, pol, len(monitors), runtime.GOMAXPROCS(0))
	errc := make(chan error, 3)
	var listeners []net.Listener
	addListener := func(network, addr string) error {
		l, err := net.Listen(network, addr)
		if err != nil {
			return err
		}
		listeners = append(listeners, l)
		fmt.Fprintf(out, "asppserve: ingest on %s %s\n", network, l.Addr())
		go func() { errc <- p.ServeIngest(l) }()
		return nil
	}
	if *listen != "" {
		if err := addListener("tcp", *listen); err != nil {
			return err
		}
	}
	if *unixSock != "" {
		os.Remove(*unixSock) // stale socket from a previous run
		if err := addListener("unix", *unixSock); err != nil {
			return err
		}
		defer os.Remove(*unixSock)
	}
	var httpSrv *http.Server
	if *httpAddr != "" {
		hl, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "asppserve: http on %s\n", hl.Addr())
		httpSrv = &http.Server{Handler: p.Handler()}
		go func() { errc <- httpSrv.Serve(hl) }()
	}
	defer func() {
		for _, l := range listeners {
			l.Close()
		}
		if httpSrv != nil {
			httpSrv.Close()
		}
	}()

	select {
	case <-ctx.Done():
		fmt.Fprintln(out, "asppserve: shutting down")
		s := p.Stats()
		fmt.Fprintf(out, "asppserve: processed %d updates, %d alarms, %d dropped, p99 %v\n",
			s.Processed, s.Alarms, s.Dropped, time.Duration(s.P99Ns))
		return ctx.Err()
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}

// runSelftest replays the churn simulator's update corpus through the
// pipeline at full speed and reports sustained throughput and latency —
// the same load path make serve-smoke and the benchmarks use.
func runSelftest(p *serve.Pipeline, internet *aspp.Internet, monitors []bgp.ASN, total int64, events int, seed int64, counters *obs.Counters, out io.Writer) error {
	g := internet.Graph()
	origins, err := collector.AssignOrigins(g, collector.DefaultPolicyConfig())
	if err != nil {
		return err
	}
	evs := collector.PlanChurn(origins, events, seed+1)
	if len(evs) == 0 {
		return errors.New("no churn events planned (topology too small?)")
	}
	corpus, err := collector.ChurnStream(g, origins, evs, monitors, 0, counters)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "selftest: %d-update churn corpus, replaying %d updates through %d shards\n",
		len(corpus), total, p.Shards())
	rep, err := p.RunLoad(corpus, total)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "selftest: %d updates in %v = %.0f updates/sec\n",
		rep.Processed, rep.Elapsed.Round(time.Millisecond), rep.UpdatesPerSec)
	fmt.Fprintf(out, "selftest: latency p50 %v p99 %v, %d alarms, %d dropped\n",
		time.Duration(rep.P50Ns), time.Duration(rep.P99Ns), rep.Alarms, rep.Dropped)
	if rep.Dropped > 0 {
		return fmt.Errorf("selftest dropped %d updates", rep.Dropped)
	}
	return nil
}

// parseMonitors resolves "topK" (degree-ranked) or an explicit
// comma-separated ASN list against the generated graph.
func parseMonitors(spec string, g *aspp.Graph) ([]bgp.ASN, error) {
	if k, ok := strings.CutPrefix(spec, "top"); ok {
		kn, err := strconv.Atoi(k)
		if err == nil && kn > 0 {
			return g.TopByDegree(kn), nil
		}
	}
	var mons []bgp.ASN
	for _, f := range strings.Split(spec, ",") {
		asn, err := bgp.ParseASN(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad -monitors %q: %w", spec, err)
		}
		mons = append(mons, asn)
	}
	if len(mons) == 0 {
		return nil, errors.New("empty monitor set")
	}
	return mons, nil
}
