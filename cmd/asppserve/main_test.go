package main

import (
	"context"
	"strings"
	"testing"
)

func TestRunSelftest(t *testing.T) {
	var sb strings.Builder
	err := run(context.Background(), []string{
		"-selftest", "-n", "500", "-events", "30", "-updates", "20000", "-shards", "2", "-counters",
	}, &sb)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{"selftest:", "updates/sec", "p50", "p99", "0 dropped", "counters:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunBadInputs(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), nil, &sb); err == nil {
		t.Error("no mode accepted")
	}
	if err := run(context.Background(), []string{"-selftest", "-policy", "yolo"}, &sb); err == nil {
		t.Error("bad policy accepted")
	}
	if err := run(context.Background(), []string{"-selftest", "-monitors", "bogus,list"}, &sb); err == nil {
		t.Error("bad monitors accepted")
	}
	if err := run(context.Background(), []string{"-selftest", "-batch", "512", "-depth", "16"}, &sb); err == nil {
		t.Error("batch > depth accepted")
	}
}

func TestParseMonitorsSpecs(t *testing.T) {
	var sb strings.Builder
	// Explicit ASN list goes through the full selftest path.
	err := run(context.Background(), []string{
		"-selftest", "-n", "400", "-events", "20", "-updates", "5000", "-monitors", "top10",
	}, &sb)
	if err != nil {
		t.Fatalf("top10 monitors: %v\n%s", err, sb.String())
	}
}
