// Package aspp is a simulator, detector and measurement harness for the
// ASPP-based BGP prefix interception attack, reproducing "Studying Impacts
// of Prefix Interception Attack by Exploring BGP AS-PATH Prepending"
// (Zhang & Pourzandi, ICDCS 2012).
//
// The attack: a victim AS pads its announcements with λ copies of its own
// ASN (AS-path prepending, routine traffic engineering); an attacker that
// receives the route removes λ−1 of the copies and re-advertises it. The
// bogus route is λ−1 hops shorter without a false origin or a fake link,
// so much of the Internet switches to it and the attacker transparently
// intercepts traffic that still reaches the victim.
//
// The package wraps the internal engines behind one entry point:
//
//	internet, err := aspp.NewInternet(aspp.WithSize(4000), aspp.WithSeed(7))
//	impact, err := internet.SimulateAttack(aspp.Scenario{
//		Victim:   victim,
//		Attacker: attacker,
//		Prepend:  3,
//	})
//	fmt.Printf("polluted: %.1f%%\n", 100*impact.After())
//
// Experiment drivers regenerate every figure of the paper's evaluation;
// see the examples directory, cmd/asppbench and EXPERIMENTS.md.
package aspp

import (
	"context"
	"fmt"
	"io"
	"strings"

	"aspp/internal/bgp"
	"aspp/internal/collector"
	"aspp/internal/core"
	"aspp/internal/defense"
	"aspp/internal/detect"
	"aspp/internal/experiment"
	"aspp/internal/measure"
	"aspp/internal/obs"
	"aspp/internal/relinfer"
	"aspp/internal/routing"
	"aspp/internal/stats"
	"aspp/internal/topology"
	"aspp/internal/trace"
)

// Core data types, re-exported for the public API surface.
type (
	// ASN is an autonomous system number.
	ASN = bgp.ASN
	// Path is a BGP AS-PATH with literal prepending.
	Path = bgp.Path
	// Route binds a prefix to a path.
	Route = bgp.Route
	// Update is one monitor-observed routing change.
	Update = bgp.Update
	// Graph is an immutable AS-level topology.
	Graph = topology.Graph
	// GenConfig parameterizes the topology generator.
	GenConfig = topology.GenConfig
	// Scenario configures one interception attack.
	Scenario = core.Scenario
	// Impact is the simulated outcome of one attack.
	Impact = core.Impact
	// Announcement is the victim's prefix advertisement.
	Announcement = routing.Announcement
	// RoutingResult is a stable per-AS routing outcome.
	RoutingResult = routing.Result
	// Alarm is one detection event.
	Alarm = detect.Alarm
	// Detector consumes update streams and raises alarms.
	Detector = detect.Detector
	// PairConfig drives the attacker/victim pair experiments (Figs. 7-8).
	PairConfig = experiment.PairConfig
	// PairImpact is one hijack instance's result.
	PairImpact = experiment.PairImpact
	// SweepPoint is one λ step of a prepend sweep (Figs. 9-12).
	SweepPoint = experiment.SweepPoint
	// DetectionConfig drives the detection experiments (Figs. 13-14).
	DetectionConfig = experiment.DetectionConfig
	// DetectionOutcome carries detection accuracy and latency series.
	DetectionOutcome = experiment.DetectionOutcome
	// PolicyConfig assigns prepending policies to origins (Figs. 5-6).
	PolicyConfig = collector.PolicyConfig
	// SurveyConfig drives the ASPP usage survey.
	SurveyConfig = measure.SurveyConfig
	// SurveyResult is the usage survey outcome.
	SurveyResult = measure.SurveyResult
	// CaseStudy is the §III Facebook anomaly reproduction.
	CaseStudy = experiment.CaseStudy
	// CDF is an empirical distribution, used by several results.
	CDF = stats.CDF
	// TraceHop is one simulated traceroute line (Table I).
	TraceHop = trace.Hop
	// DefenseConfig drives victim self-defense evaluation (monitor
	// placement strategies over the owner-policy check).
	DefenseConfig = defense.Config
	// DefenseOutcome is one placement strategy's evaluation.
	DefenseOutcome = defense.Outcome
	// MitigationOutcome quantifies a victim's reactive response.
	MitigationOutcome = defense.MitigationOutcome
	// SiblingScenario is the Fig. 11 sibling-enabled interception setup.
	SiblingScenario = experiment.SiblingScenario
	// SusceptibilityConfig drives the §VI-B tier-matrix experiment.
	SusceptibilityConfig = experiment.SusceptibilityConfig
	// TierCell is one (victim tier, attacker tier) aggregate.
	TierCell = experiment.TierCell
	// EngineKind selects the attack-propagation engine for sweeps.
	EngineKind = core.EngineKind
	// Counters collects optional per-sweep telemetry (propagations per
	// engine, baseline-cache hits/misses, skipped draws, churn updates).
	// The zero value is ready to use; nil disables recording. Use one
	// Counters per sweep and read it with Snapshot.
	Counters = obs.Counters
	// CountersSnapshot is a consistent point-in-time read of Counters.
	CountersSnapshot = obs.Snapshot
	// SweepConfig drives counter-aware prepend sweeps (Figs. 9-12).
	SweepConfig = experiment.SweepConfig
)

// Attack-propagation engine kinds (the asppbench -engine ablation).
const (
	// EngineAuto picks delta propagation when a baseline is available.
	EngineAuto = core.EngineAuto
	// EngineFull recomputes every attack from scratch.
	EngineFull = core.EngineFull
	// EngineDelta forces incremental recomputation of the attacker's cone.
	EngineDelta = core.EngineDelta
)

// ParseEngineKind parses "auto", "full" or "delta".
var ParseEngineKind = core.ParseEngineKind

// Re-exported constructors and helpers.
var (
	// ParseASN parses "7018" or "AS7018".
	ParseASN = bgp.ParseASN
	// ParsePath parses "7018 3356 32934 32934".
	ParsePath = bgp.ParsePath
	// DefaultPolicyConfig is the calibrated prepending-policy mix.
	DefaultPolicyConfig = collector.DefaultPolicyConfig
	// DefaultSurveyConfig is the standard usage-survey setup.
	DefaultSurveyConfig = measure.DefaultSurveyConfig
	// DefaultDetectionConfig mirrors the paper's Figs. 13-14 setup.
	DefaultDetectionConfig = experiment.DefaultDetectionConfig
	// FacebookCaseStudy builds and simulates the §III anomaly.
	FacebookCaseStudy = experiment.FacebookCaseStudy
	// RenderTraceroute formats hops like the paper's Table I.
	RenderTraceroute = trace.Render
)

// Pair-experiment kinds (Figs. 7-8).
const (
	PairsTier1  = experiment.PairsTier1
	PairsRandom = experiment.PairsRandom
)

// Monitor-selection policies for detection experiments.
const (
	MonitorsTopDegree = experiment.MonitorsTopDegree
	MonitorsRandom    = experiment.MonitorsRandom
)

// Self-defense monitor-placement strategies.
const (
	StrategyTopDegree  = defense.StrategyTopDegree
	StrategyRandom     = defense.StrategyRandom
	StrategyVictimCone = defense.StrategyVictimCone
	StrategyGreedy     = defense.StrategyGreedy
)

// Victim mitigation responses.
const (
	MitigateUnprepend = defense.MitigateUnprepend
	MitigateWithhold  = defense.MitigateWithhold
)

// Internet is the top-level handle: a topology plus the operations the
// paper's study needs. It is immutable and safe for concurrent use.
type Internet struct {
	g *topology.Graph
}

// Option configures NewInternet.
type Option interface {
	apply(*options)
}

type options struct {
	size  int
	seed  int64
	gen   *topology.GenConfig
	graph *topology.Graph
}

type optionFunc func(*options)

func (f optionFunc) apply(o *options) { f(o) }

// WithSize sets the number of ASes to generate (default 4000).
func WithSize(n int) Option {
	return optionFunc(func(o *options) { o.size = n })
}

// WithSeed sets the generator seed (default 1).
func WithSeed(seed int64) Option {
	return optionFunc(func(o *options) { o.seed = seed })
}

// WithGenConfig supplies a full generator configuration, overriding
// WithSize (WithSeed still applies unless the config sets its own).
func WithGenConfig(cfg GenConfig) Option {
	return optionFunc(func(o *options) { c := cfg; o.gen = &c })
}

// WithTopology uses an existing graph instead of generating one.
func WithTopology(g *Graph) Option {
	return optionFunc(func(o *options) { o.graph = g })
}

// NewInternet builds an Internet from the options: a supplied topology, a
// supplied generator configuration, or a default generated topology.
func NewInternet(opts ...Option) (*Internet, error) {
	o := options{size: 4000, seed: 1}
	for _, opt := range opts {
		opt.apply(&o)
	}
	if o.graph != nil {
		return &Internet{g: o.graph}, nil
	}
	cfg := topology.DefaultGenConfig(o.size)
	if o.gen != nil {
		cfg = *o.gen
	}
	if o.seed != 1 || cfg.Seed == 0 {
		cfg.Seed = o.seed
	}
	g, err := topology.Generate(cfg)
	if err != nil {
		return nil, fmt.Errorf("aspp: generate topology: %w", err)
	}
	return &Internet{g: g}, nil
}

// Update types, re-exported for building update streams.
const (
	Announce = bgp.Announce
	Withdraw = bgp.Withdraw
)

// LoadInternetFromString parses an inline serial-2 relationship listing;
// handy for small hand-built scenarios and examples.
func LoadInternetFromString(s string) (*Internet, error) {
	return LoadInternet(strings.NewReader(s))
}

// LoadInternet reads a CAIDA serial-2 style relationship file
// ("provider|customer|-1", "peer|peer|0") and wraps it as an Internet.
func LoadInternet(r io.Reader) (*Internet, error) {
	g, err := topology.ReadSerial2(r)
	if err != nil {
		return nil, fmt.Errorf("aspp: load topology: %w", err)
	}
	return &Internet{g: g}, nil
}

// WriteTopology writes the topology in serial-2 format.
func (in *Internet) WriteTopology(w io.Writer) error {
	return topology.WriteSerial2(w, in.g)
}

// Graph exposes the underlying topology.
func (in *Internet) Graph() *Graph { return in.g }

// Tier1s returns the provider-free core ASes.
func (in *Internet) Tier1s() []ASN { return in.g.Tier1s() }

// TopByDegree returns the n best-connected ASes.
func (in *Internet) TopByDegree(n int) []ASN { return in.g.TopByDegree(n) }

// SimulateAttackObs is SimulateAttack recording propagation telemetry
// into the optional counters (nil disables recording).
func (in *Internet) SimulateAttackObs(sc Scenario, c *Counters) (*Impact, error) {
	return core.SimulateObs(in.g, sc, c)
}

// SimulateAttack runs one interception attack (see core.Simulate).
func (in *Internet) SimulateAttack(sc Scenario) (*Impact, error) {
	return core.Simulate(in.g, sc)
}

// Propagate computes baseline routing for an announcement.
func (in *Internet) Propagate(ann Announcement) (*RoutingResult, error) {
	return routing.Propagate(in.g, ann)
}

// SamplePairs runs the ranked pair experiments (paper Figs. 7-8).
func (in *Internet) SamplePairs(cfg PairConfig) ([]PairImpact, error) {
	return experiment.SamplePairs(in.g, cfg)
}

// SamplePairsCtx is SamplePairs with cooperative cancellation: once ctx is
// cancelled no further instance is simulated, in-flight work drains, and
// ctx.Err() is returned.
func (in *Internet) SamplePairsCtx(ctx context.Context, cfg PairConfig) ([]PairImpact, error) {
	return experiment.SamplePairsCtx(ctx, in.g, cfg)
}

// SweepPrepend runs a λ sweep for one pair (paper Figs. 9-12).
func (in *Internet) SweepPrepend(victim, attacker ASN, maxLambda int, violate bool) ([]SweepPoint, error) {
	return experiment.SweepPrepend(in.g, victim, attacker, maxLambda, violate, 0)
}

// SweepPrependCtx is SweepPrepend with cooperative cancellation.
func (in *Internet) SweepPrependCtx(ctx context.Context, victim, attacker ASN, maxLambda int, violate bool) ([]SweepPoint, error) {
	return experiment.SweepPrependCtx(ctx, in.g, victim, attacker, maxLambda, violate, 0)
}

// SweepPrependEngineCtx is SweepPrependCtx with an explicit engine choice
// (full recomputation vs incremental delta propagation).
func (in *Internet) SweepPrependEngineCtx(ctx context.Context, victim, attacker ASN, maxLambda int, violate bool, engine EngineKind) ([]SweepPoint, error) {
	return experiment.SweepPrependEngineCtx(ctx, in.g, victim, attacker, maxLambda, violate, 0, engine)
}

// SweepPrependCfgCtx is the config-struct form of the prepend sweep,
// exposing the engine choice and optional telemetry counters.
func (in *Internet) SweepPrependCfgCtx(ctx context.Context, cfg SweepConfig) ([]SweepPoint, error) {
	return experiment.SweepPrependCfgCtx(ctx, in.g, cfg)
}

// RunDetection evaluates the detection algorithm (paper Figs. 13-14).
func (in *Internet) RunDetection(cfg DetectionConfig) (*DetectionOutcome, error) {
	return experiment.RunDetection(in.g, cfg)
}

// RunDetectionCtx is RunDetection with cooperative cancellation.
func (in *Internet) RunDetectionCtx(ctx context.Context, cfg DetectionConfig) (*DetectionOutcome, error) {
	return experiment.RunDetectionCtx(ctx, in.g, cfg)
}

// NewDetector builds a streaming detector over the given vantage points,
// using the topology's relationships for the hint rules.
func (in *Internet) NewDetector(monitors []ASN) *Detector {
	return detect.NewDetector(monitors, in.g)
}

// UsageSurvey characterizes ASPP usage from monitor tables and update
// streams (paper Figs. 5-6). Zero-value configs select the defaults.
func (in *Internet) UsageSurvey(policy PolicyConfig, survey SurveyConfig) (*SurveyResult, error) {
	if policy.MaxLambda == 0 && policy.PrependFrac == 0 {
		policy = collector.DefaultPolicyConfig()
	}
	if survey.ChurnEvents == 0 && len(survey.Monitors) == 0 {
		def := measure.DefaultSurveyConfig()
		def.Workers = survey.Workers
		def.Seed = survey.Seed
		def.Counters = survey.Counters
		def.Batch = survey.Batch
		if def.Seed == 0 {
			def.Seed = 1
		}
		survey = def
	}
	origins, err := collector.AssignOrigins(in.g, policy)
	if err != nil {
		return nil, err
	}
	return measure.RunSurvey(in.g, origins, survey)
}

// InferRelationships rebuilds AS relationships from simulated monitor
// paths (the paper's §IV-A preprocessing): Gao's algorithm, the tier-1
// seeded variant, and their consensus. It returns the consensus inference
// and its accuracy against the generator's ground truth.
func (in *Internet) InferRelationships(originSample, nTopMonitors int) (*relinfer.Inferred, relinfer.Accuracy, error) {
	monitors := measure.DefaultMonitors(in.g, nTopMonitors, nTopMonitors/2, 1)
	paths, err := relinfer.CollectPaths(in.g, relinfer.SampleOrigins(in.g, originSample), monitors, 0)
	if err != nil {
		return nil, relinfer.Accuracy{}, err
	}
	plain, err := relinfer.Gao(paths, relinfer.GaoConfig{})
	if err != nil {
		return nil, relinfer.Accuracy{}, err
	}
	seeded, err := relinfer.Tier1Seeded(paths, in.g.Tier1s())
	if err != nil {
		return nil, relinfer.Accuracy{}, err
	}
	cons, err := relinfer.Consensus(paths, plain, seeded)
	if err != nil {
		return nil, relinfer.Accuracy{}, err
	}
	return cons, relinfer.Score(cons, in.g), nil
}

// SusceptibilityMatrix answers §VI-B's "what type of ASes are likely to
// be hijacked" as a (victim tier × attacker tier) pollution matrix.
func (in *Internet) SusceptibilityMatrix(cfg SusceptibilityConfig) ([]TierCell, error) {
	return experiment.SusceptibilityMatrix(in.g, cfg)
}

// SusceptibilityMatrixCtx is SusceptibilityMatrix with cooperative
// cancellation.
func (in *Internet) SusceptibilityMatrixCtx(ctx context.Context, cfg SusceptibilityConfig) ([]TierCell, error) {
	return experiment.SusceptibilityMatrixCtx(ctx, in.g, cfg)
}

// DefaultSusceptibilityConfig is the calibrated §VI-B setup.
var DefaultSusceptibilityConfig = experiment.DefaultSusceptibilityConfig

// CompareDefenses evaluates the monitor-placement strategies for one
// victim (the paper's §VIII future-work agenda).
func (in *Internet) CompareDefenses(cfg DefenseConfig) ([]DefenseOutcome, error) {
	return defense.Compare(in.g, cfg)
}

// DefaultDefenseConfig returns a calibrated self-defense setup.
var DefaultDefenseConfig = defense.DefaultConfig

// Mitigate simulates a victim's reactive response to an ongoing attack.
func (in *Internet) Mitigate(sc Scenario, m defense.Mitigation) (*MitigationOutcome, error) {
	return defense.Mitigate(in.g, sc, m)
}

// CautiousAdoptionSweep measures an attack's pollution as PGBGP-style
// cautious adoption (quarantining routes whose prepend count drops below
// the historical value) spreads across the given deployment fractions.
func (in *Internet) CautiousAdoptionSweep(sc Scenario, fracs []float64, policy defense.DeployPolicy, seed int64) ([]defense.CautiousOutcome, error) {
	return defense.CautiousAdoptionSweep(in.g, sc, fracs, policy, seed)
}

// Cautious-adoption rollout policies.
const (
	DeployRandom    = defense.DeployRandom
	DeployTopDegree = defense.DeployTopDegree
)

// BuildSiblingScenario grafts a sibling of victim (as a customer of
// attacker) onto the topology, enabling the paper's Fig. 11 valley-free
// interception. The returned scenario routes via the Reference engine.
func (in *Internet) BuildSiblingScenario(victim, attacker, siblingASN ASN) (*SiblingScenario, error) {
	return experiment.BuildSiblingScenario(in.g, victim, attacker, siblingASN)
}

// DetectOwnPolicy re-exports the owner-side check: the prefix owner
// compares observed routes against its own per-neighbor prepend policy.
var DetectOwnPolicy = detect.DetectOwnPolicy

// MonitorRoute is one vantage point's current route for a prefix.
type MonitorRoute = detect.MonitorRoute

// ErrAttackerSeesNoRoute re-exports the core sentinel: the attacker never
// receives the victim's route, so there is nothing to strip. Match it
// with errors.Is.
var ErrAttackerSeesNoRoute = core.ErrAttackerSeesNoRoute
