// Command benchjson converts `go test -bench -benchmem` output on stdin
// into the repo's benchmark-JSON record (see EXPERIMENTS.md for the
// schema): a flat object mapping benchmark name to its ns/op, B/op and
// allocs/op. `make bench-json` pipes the tier-1 benchmark suite through it
// to produce the committed BENCH_prN.json baseline that future PRs (and
// benchstat runs) compare against.
//
// The GOMAXPROCS suffix (-8 in BenchmarkFoo-8) is stripped so the record
// is stable across machines; non-benchmark lines are ignored.
//
// Diff mode compares two committed records:
//
//	benchjson -diff [-filter regexp] old.json new.json
//
// printing per-benchmark time and allocation ratios (old/new, so >1 means
// the new record is better) and a geometric-mean speedup over the
// benchmarks the optional filter selects.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

// metrics is one benchmark's record. B/op and allocs/op are -1 when the
// benchmark did not report memory (no -benchmem and no b.ReportAllocs), so
// "didn't measure" is distinguishable from "measured zero". Extra holds
// custom b.ReportMetric units (e.g. p99_ns, updates/sec) keyed by unit
// name; Go's map marshaling sorts keys, so the committed JSON stays
// deterministic.
type metrics struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"b_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

func main() {
	diff := flag.Bool("diff", false, "compare two benchmark-JSON records instead of reading go test output")
	filter := flag.String("filter", "", "with -diff: only compare benchmarks whose name matches this regexp")
	flag.Parse()

	var err error
	if *diff {
		if flag.NArg() != 2 {
			err = fmt.Errorf("usage: benchjson -diff [-filter regexp] old.json new.json")
		} else {
			err = runDiff(flag.Arg(0), flag.Arg(1), *filter, os.Stdout)
		}
	} else {
		err = run(os.Stdin, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func loadRecord(path string) (map[string]metrics, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec map[string]metrics
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rec, nil
}

// ratio renders old/new as a "1.23x" factor; new == 0 with old > 0 is a
// clean "inf" (e.g. an allocation count driven to zero).
func ratio(old, new float64) string {
	switch {
	case old == new: // covers 0/0
		return "1.00x"
	case new == 0:
		return "inf"
	default:
		return fmt.Sprintf("%.2fx", old/new)
	}
}

// runDiff prints a per-benchmark comparison of two records plus the
// geometric-mean time speedup over the compared set.
func runDiff(oldPath, newPath, filter string, out io.Writer) error {
	oldRec, err := loadRecord(oldPath)
	if err != nil {
		return err
	}
	newRec, err := loadRecord(newPath)
	if err != nil {
		return err
	}
	var re *regexp.Regexp
	if filter != "" {
		if re, err = regexp.Compile(filter); err != nil {
			return fmt.Errorf("bad -filter: %w", err)
		}
	}

	names := make([]string, 0, len(oldRec))
	onlyOld, onlyNew := 0, 0
	for n := range oldRec {
		if re != nil && !re.MatchString(n) {
			continue
		}
		if _, ok := newRec[n]; ok {
			names = append(names, n)
		} else {
			onlyOld++
		}
	}
	for n := range newRec {
		if re != nil && !re.MatchString(n) {
			continue
		}
		if _, ok := oldRec[n]; !ok {
			onlyNew++
		}
	}
	if len(names) == 0 {
		return fmt.Errorf("no common benchmarks between %s and %s (filter %q)", oldPath, newPath, filter)
	}
	sort.Strings(names)

	w := tabwriter.NewWriter(out, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\told ns/op\tnew ns/op\tspeedup\told allocs\tnew allocs\talloc ratio")
	logSum, logN := 0.0, 0
	for _, n := range names {
		o, nw := oldRec[n], newRec[n]
		allocOld, allocNew, allocRatio := "-", "-", "-"
		if o.AllocsPerOp >= 0 && nw.AllocsPerOp >= 0 {
			allocOld = strconv.FormatInt(o.AllocsPerOp, 10)
			allocNew = strconv.FormatInt(nw.AllocsPerOp, 10)
			allocRatio = ratio(float64(o.AllocsPerOp), float64(nw.AllocsPerOp))
		}
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%s\t%s\t%s\t%s\n",
			n, o.NsPerOp, nw.NsPerOp, ratio(o.NsPerOp, nw.NsPerOp), allocOld, allocNew, allocRatio)
		if o.NsPerOp > 0 && nw.NsPerOp > 0 {
			logSum += math.Log(o.NsPerOp / nw.NsPerOp)
			logN++
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if logN > 0 {
		fmt.Fprintf(out, "geomean speedup: %.2fx over %d benchmarks\n", math.Exp(logSum/float64(logN)), logN)
	}
	if onlyOld+onlyNew > 0 {
		fmt.Fprintf(out, "not compared: %d only in %s, %d only in %s\n", onlyOld, oldPath, onlyNew, newPath)
	}
	return nil
}

func run(in *os.File, out *os.File) error {
	results := map[string]metrics{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		name, m, ok := parseLine(line)
		if !ok {
			continue
		}
		results[name] = m
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines on stdin (pipe `go test -bench -benchmem` output)")
	}

	// Deterministic key order so the committed JSON diffs cleanly.
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("{\n")
	for i, n := range names {
		enc, err := json.Marshal(results[n])
		if err != nil {
			return err
		}
		fmt.Fprintf(&b, "  %q: %s", n, enc)
		if i < len(names)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	_, err := out.WriteString(b.String())
	return err
}

// parseLine parses one benchmark result line, e.g.
//
//	BenchmarkPropagateReuse/reuse-4  5000  201646 ns/op  0 B/op  0 allocs/op
func parseLine(line string) (string, metrics, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", metrics{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	name = strings.TrimPrefix(name, "Benchmark")
	m := metrics{BytesPerOp: -1, AllocsPerOp: -1}
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return "", metrics{}, false
			}
			m.NsPerOp = f
			seenNs = true
		case "B/op":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return "", metrics{}, false
			}
			m.BytesPerOp = v
		case "allocs/op":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return "", metrics{}, false
			}
			m.AllocsPerOp = v
		default:
			// Custom b.ReportMetric units (p99_ns, updates/sec, MB/s…):
			// recorded verbatim under the unit name.
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				continue // not a value/unit pair; skip
			}
			if m.Extra == nil {
				m.Extra = make(map[string]float64)
			}
			m.Extra[unit] = f
		}
	}
	return name, m, seenNs
}
