// Command benchjson converts `go test -bench -benchmem` output on stdin
// into the repo's benchmark-JSON record (see EXPERIMENTS.md for the
// schema): a flat object mapping benchmark name to its ns/op, B/op and
// allocs/op. `make bench-json` pipes the tier-1 benchmark suite through it
// to produce BENCH_pr4.json, the committed baseline that future PRs (and
// benchstat runs) compare against.
//
// The GOMAXPROCS suffix (-8 in BenchmarkFoo-8) is stripped so the record
// is stable across machines; non-benchmark lines are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// metrics is one benchmark's record. B/op and allocs/op are -1 when the
// benchmark did not report memory (no -benchmem and no b.ReportAllocs), so
// "didn't measure" is distinguishable from "measured zero".
type metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in *os.File, out *os.File) error {
	results := map[string]metrics{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		name, m, ok := parseLine(line)
		if !ok {
			continue
		}
		results[name] = m
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines on stdin (pipe `go test -bench -benchmem` output)")
	}

	// Deterministic key order so the committed JSON diffs cleanly.
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("{\n")
	for i, n := range names {
		enc, err := json.Marshal(results[n])
		if err != nil {
			return err
		}
		fmt.Fprintf(&b, "  %q: %s", n, enc)
		if i < len(names)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	_, err := out.WriteString(b.String())
	return err
}

// parseLine parses one benchmark result line, e.g.
//
//	BenchmarkPropagateReuse/reuse-4  5000  201646 ns/op  0 B/op  0 allocs/op
func parseLine(line string) (string, metrics, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", metrics{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	name = strings.TrimPrefix(name, "Benchmark")
	m := metrics{BytesPerOp: -1, AllocsPerOp: -1}
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return "", metrics{}, false
			}
			m.NsPerOp = f
			seenNs = true
		case "B/op":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return "", metrics{}, false
			}
			m.BytesPerOp = v
		case "allocs/op":
			v, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return "", metrics{}, false
			}
			m.AllocsPerOp = v
		}
	}
	return name, m, seenNs
}
