package main

import "testing"

func TestParseLine(t *testing.T) {
	cases := []struct {
		line string
		name string
		m    metrics
		ok   bool
	}{
		{
			line: "BenchmarkPropagateReuse/reuse-4  5000  201646 ns/op  0 B/op  0 allocs/op",
			name: "PropagateReuse/reuse",
			m:    metrics{NsPerOp: 201646, BytesPerOp: 0, AllocsPerOp: 0},
			ok:   true,
		},
		{
			line: "BenchmarkFig9Sweep-16  2  633452112 ns/op",
			name: "Fig9Sweep",
			m:    metrics{NsPerOp: 633452112, BytesPerOp: -1, AllocsPerOp: -1},
			ok:   true,
		},
		{
			// Sub-benchmark names may themselves contain dashes; only a
			// trailing numeric -N is the GOMAXPROCS suffix.
			line: "BenchmarkDeltaVsFull/delta-engine-8  100  791284 ns/op  12 B/op  1 allocs/op",
			name: "DeltaVsFull/delta-engine",
			m:    metrics{NsPerOp: 791284, BytesPerOp: 12, AllocsPerOp: 1},
			ok:   true,
		},
		{line: "PASS", ok: false},
		{line: "ok  \taspp\t42.1s", ok: false},
		{line: "BenchmarkBroken-4 garbage", ok: false},
	}
	for _, c := range cases {
		name, m, ok := parseLine(c.line)
		if ok != c.ok {
			t.Errorf("parseLine(%q) ok=%v, want %v", c.line, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if name != c.name || m != c.m {
			t.Errorf("parseLine(%q) = %q %+v, want %q %+v", c.line, name, m, c.name, c.m)
		}
	}
}
