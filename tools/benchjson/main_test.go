package main

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	cases := []struct {
		line string
		name string
		m    metrics
		ok   bool
	}{
		{
			line: "BenchmarkPropagateReuse/reuse-4  5000  201646 ns/op  0 B/op  0 allocs/op",
			name: "PropagateReuse/reuse",
			m:    metrics{NsPerOp: 201646, BytesPerOp: 0, AllocsPerOp: 0},
			ok:   true,
		},
		{
			line: "BenchmarkFig9Sweep-16  2  633452112 ns/op",
			name: "Fig9Sweep",
			m:    metrics{NsPerOp: 633452112, BytesPerOp: -1, AllocsPerOp: -1},
			ok:   true,
		},
		{
			// Sub-benchmark names may themselves contain dashes; only a
			// trailing numeric -N is the GOMAXPROCS suffix.
			line: "BenchmarkDeltaVsFull/delta-engine-8  100  791284 ns/op  12 B/op  1 allocs/op",
			name: "DeltaVsFull/delta-engine",
			m:    metrics{NsPerOp: 791284, BytesPerOp: 12, AllocsPerOp: 1},
			ok:   true,
		},
		{
			// Custom b.ReportMetric units land in Extra under their unit
			// name (the PR 10 serving benchmarks report p99_ns and
			// updates/sec alongside the standard triplet).
			line: "BenchmarkServeThroughput/shards=2-8  3128575  804.8 ns/op  8388607 p99_ns  1243289 updates/sec  0 B/op  0 allocs/op",
			name: "ServeThroughput/shards=2",
			m: metrics{NsPerOp: 804.8, BytesPerOp: 0, AllocsPerOp: 0,
				Extra: map[string]float64{"p99_ns": 8388607, "updates/sec": 1243289}},
			ok: true,
		},
		{line: "PASS", ok: false},
		{line: "ok  \taspp\t42.1s", ok: false},
		{line: "BenchmarkBroken-4 garbage", ok: false},
	}
	for _, c := range cases {
		name, m, ok := parseLine(c.line)
		if ok != c.ok {
			t.Errorf("parseLine(%q) ok=%v, want %v", c.line, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if name != c.name || !reflect.DeepEqual(m, c.m) {
			t.Errorf("parseLine(%q) = %q %+v, want %q %+v", c.line, name, m, c.name, c.m)
		}
	}
}

func writeRecord(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunDiff(t *testing.T) {
	oldPath := writeRecord(t, "old.json", `{
  "Fig13Detection": {"ns_per_op": 4000, "b_per_op": 800, "allocs_per_op": 100},
  "Fig9Sweep": {"ns_per_op": 1000, "b_per_op": -1, "allocs_per_op": -1},
  "Gone": {"ns_per_op": 5, "b_per_op": -1, "allocs_per_op": -1}
}`)
	newPath := writeRecord(t, "new.json", `{
  "Fig13Detection": {"ns_per_op": 1000, "b_per_op": 0, "allocs_per_op": 0},
  "Fig9Sweep": {"ns_per_op": 1000, "b_per_op": -1, "allocs_per_op": -1},
  "Added": {"ns_per_op": 7, "b_per_op": -1, "allocs_per_op": -1}
}`)

	var b strings.Builder
	if err := runDiff(oldPath, newPath, "", &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Fig13Detection", "4.00x", // time ratio 4000/1000
		"inf",                // 100 allocs -> 0 allocs
		"Fig9Sweep", "1.00x", // unchanged
		"geomean speedup: 2.00x over 2", // sqrt(4 * 1)
		"not compared: 1 only in", "1 only in",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}

	// The filter narrows both the table and the geomean set.
	b.Reset()
	if err := runDiff(oldPath, newPath, "Fig13", &b); err != nil {
		t.Fatal(err)
	}
	out = b.String()
	if strings.Contains(out, "Fig9Sweep") {
		t.Errorf("filtered diff still mentions Fig9Sweep:\n%s", out)
	}
	if !strings.Contains(out, "geomean speedup: 4.00x over 1") {
		t.Errorf("filtered geomean wrong:\n%s", out)
	}

	// Disjoint records are an error, not an empty table.
	if err := runDiff(oldPath, newPath, "NoSuchBenchmark", &b); err == nil {
		t.Error("expected error for empty comparison set")
	}
}
