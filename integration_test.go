package aspp

// Cross-module integration tests: full pipelines from topology generation
// through routing, collection, streaming and detection.

import (
	"bytes"
	"net/netip"
	"testing"

	"aspp/internal/bgp"
	"aspp/internal/collector"
	"aspp/internal/detect"
	"aspp/internal/routing"
)

// TestLegitimateChurnRaisesNoHighAlarms replays a full failure/restore
// cycle of backup-provisioned origins through the streaming detector:
// failovers move monitors onto heavily padded backup routes and restores
// move them back (a prepend-count *decrease*), yet none of it is an
// attack and the high-confidence rule must stay silent throughout.
func TestLegitimateChurnRaisesNoHighAlarms(t *testing.T) {
	in := testInternet(t, 800, 91)
	g := in.Graph()
	origins, err := collectorAssign(t, in)
	if err != nil {
		t.Fatal(err)
	}
	monitors := g.TopByDegree(60)
	det := in.NewDetector(monitors)

	events := collector.PlanChurn(origins, 12, 5)
	if len(events) == 0 {
		t.Skip("no backup-provisioned origins in this instance")
	}
	var tm uint64
	highAlarms := 0
	for _, ev := range events {
		var oc collector.OriginConfig
		for _, cand := range origins {
			if cand.AS == ev.Origin {
				oc = cand
				break
			}
		}
		prefix := oc.Prefixes[0]
		steady, err := routing.Propagate(g, oc.Announcement)
		if err != nil {
			t.Fatal(err)
		}
		failedAnn := oc.Announcement
		failedAnn.Withhold = map[ASN]bool{ev.Primary: true}
		failed, err := routing.Propagate(g, failedAnn)
		if err != nil {
			t.Fatal(err)
		}

		feed := func(res *routing.Result) {
			for _, m := range monitors {
				p := res.PathOf(m)
				tm++
				u := bgp.Update{Time: tm, Monitor: m, Prefix: prefix}
				if p == nil {
					u.Type = bgp.Withdraw
				} else {
					u.Type = bgp.Announce
					u.Path = p
				}
				if det.RouteOf(prefix, m) == nil && u.Type == bgp.Withdraw {
					continue // nothing to withdraw
				}
				for _, a := range det.Observe(u) {
					if a.Confidence == detect.High {
						highAlarms++
						t.Errorf("high alarm on legitimate churn (%v fails %v): %v",
							ev.Origin, ev.Primary, a)
					}
				}
			}
		}
		feed(steady) // converge to steady state
		feed(failed) // failover: longer padded backups take over
		feed(steady) // restore: padding count drops back — still no attack
	}
	if highAlarms > 0 {
		t.Fatalf("%d high-confidence false positives on churn", highAlarms)
	}
}

// TestAttackStreamDetectedAfterChurnNoise interleaves legitimate churn
// with a real attack: the detector must stay silent through the noise and
// still fire on the strip.
func TestAttackStreamDetectedAfterChurnNoise(t *testing.T) {
	in := testInternet(t, 800, 92)
	g := in.Graph()
	t1 := in.Tier1s()
	victim, attacker := t1[0], t1[1]
	im, err := in.SimulateAttack(Scenario{Victim: victim, Attacker: attacker, Prepend: 4})
	if err != nil {
		t.Fatal(err)
	}
	if im.PollutedAfter == 0 {
		t.Skip("attack ineffective in this instance")
	}
	monitors := g.TopByDegree(80)
	det := in.NewDetector(monitors)
	prefix := netip.MustParsePrefix("69.171.224.0/20")

	var tm uint64
	feed := func(res *routing.Result) (high int) {
		for _, m := range monitors {
			if p := res.PathOf(m); p != nil {
				tm++
				for _, a := range det.Observe(bgp.Update{
					Time: tm, Monitor: m, Type: bgp.Announce, Prefix: prefix, Path: p,
				}) {
					if a.Confidence == detect.High {
						high++
					}
				}
			}
		}
		return high
	}
	if got := feed(im.Baseline()); got != 0 {
		t.Fatalf("%d high alarms on the honest baseline", got)
	}
	if got := feed(im.Attacked()); got == 0 {
		t.Fatal("attack not detected from the update stream")
	}
}

// TestBinaryStreamPipelineRoundTrip serializes an attack's update stream
// to the compact binary format and re-detects from the decoded copy.
func TestBinaryStreamPipelineRoundTrip(t *testing.T) {
	in := testInternet(t, 600, 93)
	t1 := in.Tier1s()
	im, err := in.SimulateAttack(Scenario{Victim: t1[0], Attacker: t1[1], Prepend: 3})
	if err != nil {
		t.Fatal(err)
	}
	monitors := in.TopByDegree(50)
	prefix := netip.MustParsePrefix("10.1.0.0/16")

	var stream []bgp.Update
	var tm uint64
	for _, e := range collector.Snapshot(im.Baseline(), prefix, monitors) {
		tm++
		stream = append(stream, bgp.Update{
			Time: tm, Monitor: e.Monitor, Type: bgp.Announce,
			Prefix: e.Route.Prefix, Path: e.Route.Path,
		})
	}
	changes, err := collector.StreamTransition(im.Baseline(), im.Attacked(), prefix, monitors, tm)
	if err != nil {
		t.Fatal(err)
	}
	stream = append(stream, changes...)

	var buf bytes.Buffer
	if err := bgp.WriteUpdatesBinary(&buf, stream); err != nil {
		t.Fatal(err)
	}
	decoded, err := bgp.ReadUpdatesBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(stream) {
		t.Fatalf("decoded %d of %d updates", len(decoded), len(stream))
	}
	det := in.NewDetector(monitors)
	alarms := 0
	for _, u := range decoded {
		alarms += len(det.Observe(u))
	}
	if im.PollutedAfter > 0 && alarms == 0 {
		t.Error("no alarms after binary round trip of an effective attack")
	}
}

func collectorAssign(t *testing.T, in *Internet) ([]collector.OriginConfig, error) {
	t.Helper()
	return collector.AssignOrigins(in.Graph(), collector.DefaultPolicyConfig())
}
