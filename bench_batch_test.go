package aspp

import (
	"fmt"
	"testing"

	"aspp/internal/routing"
	"aspp/internal/topology"
)

// BenchmarkBatchVsSerial is the lane-batching ablation at full paper scale
// (n=4000), shaped like the sweep drivers' baseline-warming leg: K uniform
// (origin, λ) baselines over a mixed-tier origin set, computed either as K
// serial PropagateScratch calls on one warmed Scratch or as one K-lane
// PropagateBatch on one warmed BatchScratch. The batch shares a single
// frontier walk across all K lanes, so its advantage is amortized graph
// traversal and lane-row cache locality; the acceptance bar is ≥1.5×
// geomean over the serial leg with 0 allocs/op once warmed.
func BenchmarkBatchVsSerial(b *testing.B) {
	cfg := topology.DefaultGenConfig(4000)
	cfg.Seed = 9
	g, err := topology.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	asns := g.ASNs()
	anns := make([]routing.Announcement, 64)
	for i := range anns {
		anns[i] = routing.Announcement{Origin: asns[(i*131)%len(asns)], Prepend: 1 + i%8}
	}
	for _, k := range []int{8, 64} {
		lanes := anns[:k]
		b.Run(fmt.Sprintf("serial/K=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			s := routing.NewScratch()
			if _, err := routing.PropagateScratch(g, lanes[0], s); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, ann := range lanes {
					if _, err := routing.PropagateScratch(g, ann, s); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("batch/K=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			bs := routing.NewBatchScratch()
			if _, err := routing.PropagateBatch(g, lanes, bs); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := routing.PropagateBatch(g, lanes, bs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
