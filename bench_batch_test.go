package aspp

import (
	"fmt"
	"testing"

	"aspp/internal/bgp"
	"aspp/internal/routing"
	"aspp/internal/topology"
)

// BenchmarkBatchVsSerial is the lane-batching ablation at full paper scale
// (n=4000), shaped like the sweep drivers' baseline-warming leg: K uniform
// (origin, λ) baselines over a mixed-tier origin set, computed either as K
// serial PropagateScratch calls on one warmed Scratch or as one K-lane
// PropagateBatch on one warmed BatchScratch. The batch shares a single
// frontier walk across all K lanes, so its advantage is amortized graph
// traversal and lane-row cache locality; the acceptance bar is ≥1.5×
// geomean over the serial leg with 0 allocs/op once warmed.
func BenchmarkBatchVsSerial(b *testing.B) {
	cfg := topology.DefaultGenConfig(4000)
	cfg.Seed = 9
	g, err := topology.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	asns := g.ASNs()
	anns := make([]routing.Announcement, 64)
	for i := range anns {
		anns[i] = routing.Announcement{Origin: asns[(i*131)%len(asns)], Prepend: 1 + i%8}
	}
	for _, k := range []int{8, 64} {
		lanes := anns[:k]
		b.Run(fmt.Sprintf("serial/K=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			s := routing.NewScratch()
			if _, err := routing.PropagateScratch(g, lanes[0], s); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, ann := range lanes {
					if _, err := routing.PropagateScratch(g, ann, s); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("batch/K=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			bs := routing.NewBatchScratch()
			if _, err := routing.PropagateBatch(g, lanes, bs); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := routing.PropagateBatch(g, lanes, bs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBatchDeltaVsSerial is the PR 8 attack-leg ablation at full
// paper scale (n=4000), shaped like a sweep's inner loop: K attackers
// against one victim's memoized λ=4 baseline, in the two shapes a pair
// sweep actually draws. "stub" is the common case — rule-following stub
// attackers with small dirty cones, where the serial engine's three
// O(n) per-call index scans dominate and lane batching amortizes them.
// "mixed" is the adversarial tail — attackers of every tier, a third of
// them violating valley-free export, with cones approaching the whole
// graph — where both engines are compute-bound on the same recompute
// set and batching only has locality to offer. The serial leg runs K
// PropagateAttackDelta calls on one warmed Scratch; the batched leg
// runs one K-lane PropagateAttackDeltaBatch on one warmed BatchScratch,
// all lanes copy-on-write over the shared baseline under a single
// frontier walk. The acceptance bar is ≥1.5× geomean over the serial
// legs with 0 allocs/op once warmed.
func BenchmarkBatchDeltaVsSerial(b *testing.B) {
	cfg := topology.DefaultGenConfig(4000)
	cfg.Seed = 9
	g, err := topology.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	asns := g.ASNs()
	ann := routing.Announcement{Origin: asns[len(asns)/2], Prepend: 4}
	base, err := routing.Propagate(g, ann)
	if err != nil {
		b.Fatal(err)
	}
	shapes := []struct {
		name string
		atk  func(i int, a bgp.ASN) (routing.Attacker, bool)
	}{
		{"stub", func(i int, a bgp.ASN) (routing.Attacker, bool) {
			ai, _ := g.Index(a)
			if len(g.CustomersIdx(ai)) > 0 {
				return routing.Attacker{}, false
			}
			return routing.Attacker{AS: a, KeepPrepend: 1 + i%2}, true
		}},
		{"mixed", func(i int, a bgp.ASN) (routing.Attacker, bool) {
			return routing.Attacker{
				AS:                a,
				KeepPrepend:       1 + i%2,
				ViolateValleyFree: i%3 == 0,
			}, true
		}},
	}
	for _, shape := range shapes {
		lanes := make([]routing.AttackLane, 0, 64)
		for i := 0; len(lanes) < cap(lanes); i++ {
			a := asns[(i*197)%len(asns)]
			if a == ann.Origin || !base.Reachable(a) {
				continue
			}
			atk, ok := shape.atk(len(lanes), a)
			if !ok {
				continue
			}
			lanes = append(lanes, routing.AttackLane{Ann: ann, Atk: atk, Baseline: base})
		}
		for _, k := range []int{8, 64} {
			sub := lanes[:k]
			b.Run(fmt.Sprintf("%s/serial/K=%d", shape.name, k), func(b *testing.B) {
				b.ReportAllocs()
				s := routing.NewScratch()
				if _, err := routing.PropagateAttackDelta(g, ann, sub[0].Atk, base, s); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for _, l := range sub {
						if _, err := routing.PropagateAttackDelta(g, l.Ann, l.Atk, l.Baseline, s); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
			b.Run(fmt.Sprintf("%s/batch/K=%d", shape.name, k), func(b *testing.B) {
				b.ReportAllocs()
				bs := routing.NewBatchScratch()
				if _, err := routing.PropagateAttackDeltaBatch(g, sub, bs); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := routing.PropagateAttackDeltaBatch(g, sub, bs); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
