package aspp

import (
	"fmt"
	"testing"

	"aspp/internal/bgp"
	"aspp/internal/collector"
	"aspp/internal/detect"
	"aspp/internal/serve"
	"aspp/internal/topology"
)

// serveBenchCorpus builds the churn replay corpus the serving benchmarks
// replay: the same traffic shape cmd/asppserve -selftest and the load
// generator use (failover announcements, restore-triggered detections,
// withdrawals).
func serveBenchCorpus(b *testing.B, nAS int, seed int64, nMon, events int) ([]bgp.Update, []bgp.ASN, *topology.Graph) {
	b.Helper()
	cfg := topology.DefaultGenConfig(nAS)
	cfg.Seed = seed
	g, err := topology.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	origins, err := collector.AssignOrigins(g, collector.DefaultPolicyConfig())
	if err != nil {
		b.Fatal(err)
	}
	monitors := g.TopByDegree(nMon)
	evs := collector.PlanChurn(origins, events, seed+1)
	updates, err := collector.ChurnStream(g, origins, evs, monitors, 0, nil)
	if err != nil {
		b.Fatal(err)
	}
	if len(updates) == 0 {
		b.Fatal("empty churn corpus")
	}
	return updates, monitors, g
}

// BenchmarkServeThroughput is the PR 10 acceptance benchmark: end-to-end
// pipeline throughput (ring push → shard worker → ObserveBatch → alarm
// feed) over the churn corpus, swept across shard counts. ns/op is the
// per-update pipeline cost, so ≥1M updates/sec means ns/op < 1000 at the
// best shard count; the enqueue-to-alarm p99 is attached as a custom
// "p99_ns" metric (captured into BENCH_pr10.json by tools/benchjson).
func BenchmarkServeThroughput(b *testing.B) {
	updates, monitors, g := serveBenchCorpus(b, 1000, 42, 30, 80)
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			p, err := serve.NewPipeline(serve.Config{
				Shards: shards, Monitors: monitors, Rels: g,
			})
			if err != nil {
				b.Fatal(err)
			}
			p.Start()
			defer p.Close()
			// Warm the detector tables and ring paths outside the timer.
			if _, err := p.RunLoad(updates, int64(2*len(updates))); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			rep, err := p.RunLoad(updates, int64(b.N))
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if rep.Dropped != 0 {
				b.Fatalf("dropped %d updates under block policy", rep.Dropped)
			}
			b.ReportMetric(float64(rep.P99Ns), "p99_ns")
			b.ReportMetric(rep.UpdatesPerSec, "updates/sec")
		})
	}
}

// BenchmarkObserveBatch measures the batched detection core alone (no
// rings, no goroutines): one warmed detector consuming the corpus in
// serve-sized batches. The acceptance pin is 0 allocs/op warmed.
func BenchmarkObserveBatch(b *testing.B) {
	updates, monitors, g := serveBenchCorpus(b, 1000, 42, 30, 80)
	d := detect.NewDetector(monitors, g)
	alarms := make([]detect.Alarm, 0, 64)
	// Warm every (prefix, monitor) slot.
	alarms = d.ObserveBatch(updates, alarms[:0])
	_ = alarms
	const batchSize = 256
	b.ReportAllocs()
	b.ResetTimer()
	done := 0
	for done < b.N {
		for i := 0; i < len(updates) && done < b.N; i += batchSize {
			j := i + batchSize
			if j > len(updates) {
				j = len(updates)
			}
			alarms = d.ObserveBatch(updates[i:j], alarms[:0])
			done += j - i
		}
	}
}

// BenchmarkStreamDecode measures the framed codec alone: decoding a
// warmed in-memory frame stream, the asppserve ingest inner loop.
func BenchmarkStreamDecode(b *testing.B) {
	updates, _, _ := serveBenchCorpus(b, 1000, 42, 30, 80)
	var buf []byte
	var err error
	for _, u := range updates {
		buf, err = bgp.AppendUpdateBinary(buf, u)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf) / len(updates)))
	b.ReportAllocs()
	b.ResetTimer()
	var u bgp.Update
	dec := bgp.NewStreamDecoder(newLoopReader(buf))
	for i := 0; i < b.N; i++ {
		if err := dec.Next(&u); err != nil {
			b.Fatal(err)
		}
	}
}

// loopReader replays one buffer forever, so a decode benchmark never
// exhausts its stream.
type loopReader struct {
	buf []byte
	off int
}

func newLoopReader(buf []byte) *loopReader { return &loopReader{buf: buf} }

func (r *loopReader) Read(p []byte) (int, error) {
	if r.off == len(r.buf) {
		r.off = 0
	}
	n := copy(p, r.buf[r.off:])
	r.off += n
	return n, nil
}
