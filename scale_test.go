package aspp

// Scale tests: the library must handle Internet-realistic topology sizes.
// Skipped under -short.

import (
	"testing"
	"time"
)

func TestLargeScaleAttackSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale test skipped in -short mode")
	}
	start := time.Now()
	in, err := NewInternet(WithSize(30000), WithSeed(3))
	if err != nil {
		t.Fatalf("NewInternet(30000): %v", err)
	}
	genDur := time.Since(start)

	t1 := in.Tier1s()
	start = time.Now()
	im, err := in.SimulateAttack(Scenario{Victim: t1[0], Attacker: t1[1], Prepend: 3})
	if err != nil {
		t.Fatalf("SimulateAttack: %v", err)
	}
	simDur := time.Since(start)

	if im.Eligible < 25000 {
		t.Errorf("only %d eligible ASes at n=30000", im.Eligible)
	}
	if im.After() <= 0 {
		t.Error("tier-1 attack captured nobody at scale")
	}
	t.Logf("n=30000: generate %v, simulate %v, pollution %.1f%%",
		genDur.Round(time.Millisecond), simDur.Round(time.Millisecond), 100*im.After())

	// A paper-scale simulation must be fast enough for the pair
	// experiments: a single attack simulation beyond ~2s would make the
	// 200-pair detection run impractical.
	if simDur > 2*time.Second {
		t.Errorf("attack simulation took %v at n=30000, want < 2s", simDur)
	}
}

func TestLargeScaleDetectionSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale test skipped in -short mode")
	}
	in, err := NewInternet(WithSize(12000), WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultDetectionConfig()
	cfg.MonitorCounts = []int{70, 150}
	cfg.Pairs = 40
	start := time.Now()
	out, err := in.RunDetection(cfg)
	if err != nil {
		t.Fatalf("RunDetection: %v", err)
	}
	if out.Accuracy[1].Detected < out.Accuracy[0].Detected-0.05 {
		t.Errorf("accuracy fell with more monitors at scale: %+v", out.Accuracy)
	}
	t.Logf("n=12000 detection sweep (%d pairs): %v, detected@150=%.2f",
		out.UsablePairs, time.Since(start).Round(time.Millisecond), out.Accuracy[1].Detected)
}
