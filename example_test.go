package aspp_test

import (
	"fmt"
	"log"

	"aspp"
)

// Example simulates one interception attack on a small deterministic
// Internet and reports the pollution it causes.
func Example() {
	internet, err := aspp.NewInternet(aspp.WithSize(500), aspp.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	t1 := internet.Tier1s()
	impact, err := internet.SimulateAttack(aspp.Scenario{
		Victim:   t1[0],
		Attacker: t1[1],
		Prepend:  3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the attack polluted more ASes than the natural transit share: %v\n",
		impact.After() > impact.Before())
	// Output:
	// the attack polluted more ASes than the natural transit share: true
}

// ExampleLoadInternetFromString builds a hand-written topology and shows
// the attacker transformation on a single path.
func ExampleLoadInternetFromString() {
	internet, err := aspp.LoadInternetFromString(`
1|100|-1
2|1|-1
`)
	if err != nil {
		log.Fatal(err)
	}
	impact, err := internet.SimulateAttack(aspp.Scenario{
		Victim:   100,
		Attacker: 1,
		Prepend:  3,
	})
	if err != nil {
		log.Fatal(err)
	}
	before, after := impact.PathsAt(2)
	fmt.Printf("before: %v\n", before)
	fmt.Printf("after:  %v\n", after)
	// Output:
	// before: 1 100 100 100
	// after:  1 100
}

// ExamplePath_StripOriginPrepend shows the attacker's route rewrite.
func ExamplePath_StripOriginPrepend() {
	route, err := aspp.ParsePath("3356 32934 32934 32934 32934 32934")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(route.StripOriginPrepend(1))
	// Output:
	// 3356 32934
}

// ExampleDetectOwnPolicy shows the prefix owner's self-check: the owner
// knows it padded neighbor AS1 three times, so a route with one copy is
// proof of stripping.
func ExampleDetectOwnPolicy() {
	observed, err := aspp.ParsePath("5 6 1 100")
	if err != nil {
		log.Fatal(err)
	}
	alarms := aspp.DetectOwnPolicy(100, func(neighbor aspp.ASN) int {
		if neighbor == 1 {
			return 3
		}
		return 0
	}, []aspp.MonitorRoute{{Monitor: 9, Path: observed}})
	fmt.Println(alarms[0])
	// Output:
	// ALARM[high] AS6 removed 2 prepended ASN(s) (monitor AS9, witness AS100)
}
