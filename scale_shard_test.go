package aspp

// Internet-scale sharded sweeps (DESIGN §5f). The 80k tests generate the
// canonical internet80k topology (pinned by TestInternet80kDigest) and
// run the pair sweep through the sharded, byte-budgeted path. They are
// gated behind ASPP_SCALE=1 — `make scale-smoke` (part of `make check`)
// runs them; a plain `go test ./...` skips them to stay fast.

import (
	"os"
	"runtime"
	"testing"
	"time"

	"aspp/internal/topology"
)

func scaleGate(tb testing.TB) {
	if os.Getenv("ASPP_SCALE") == "" {
		tb.Skip("80k scale run gated behind ASPP_SCALE=1 (make scale-smoke)")
	}
}

func internet80k(tb testing.TB) *Internet {
	tb.Helper()
	in, err := NewInternet(WithGenConfig(topology.InternetGenConfig(topology.Internet80kASes)))
	if err != nil {
		tb.Fatalf("internet80k: %v", err)
	}
	return in
}

// TestScale80kPairSweepWithinBudget is the scale-smoke gate: a reduced
// tier-1 pair sweep over the full 80k topology, sharded with an explicit
// per-shard cache budget, must complete and the recorded memory gauges
// must respect that budget. This is the ISSUE's acceptance criterion
// that an Internet-scale sweep's working set is bounded by configuration,
// not by the victim count.
func TestScale80kPairSweepWithinBudget(t *testing.T) {
	scaleGate(t)
	const budget = 64 << 20 // per-shard baseline-cache cap
	in := internet80k(t)
	c := new(Counters)
	start := time.Now()
	pairs, err := in.SamplePairs(PairConfig{
		Kind: PairsTier1, N: 24, Prepend: 3, Seed: 1,
		Workers: runtime.NumCPU(), Batch: 16,
		Shards: 4, MemBudget: budget, Counters: c,
	})
	if err != nil {
		t.Fatalf("80k pair sweep: %v", err)
	}
	if len(pairs) != 24 {
		t.Fatalf("got %d pairs, want 24", len(pairs))
	}
	for i, p := range pairs {
		if p.After < 0 || p.After > 1 {
			t.Fatalf("pair %d pollution out of range: %+v", i, p)
		}
	}
	s := c.Snapshot()
	t.Logf("80k sweep: %v; cache_bytes=%d (budget %d) scratch_bytes=%d csr_bytes=%d",
		time.Since(start).Round(time.Millisecond), s.CacheBytes, int64(budget), s.ScratchBytes, s.CSRBytes)
	if s.CacheBytes <= 0 || s.ScratchBytes <= 0 || s.CSRBytes <= 0 {
		t.Fatalf("memory gauges not recorded: %+v", s)
	}
	if s.CacheBytes > budget {
		t.Fatalf("cache_bytes %d exceeds per-shard budget %d", s.CacheBytes, budget)
	}
}

// BenchmarkShardedPairSweep records the shard-scaling ratio at bench
// scale: one shard on one worker vs NumCPU shards on NumCPU workers,
// identical output by the invariance differential.
func BenchmarkShardedPairSweep(b *testing.B) {
	in := benchInternet(b)
	workers := runtime.NumCPU()
	cases := []struct {
		name            string
		shards, workers int
	}{
		{"shards=1/workers=1", 1, 1},
		{"shards=max/workers=max", workers, workers},
	}
	for _, bc := range cases {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := in.SamplePairs(PairConfig{
					Kind: PairsTier1, N: 40, Prepend: 3, Seed: 1,
					Workers: bc.workers, Batch: 16,
					Shards: bc.shards, MemBudget: 32 << 20,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScale80kPairSweep is the committed 80k record (BENCH_pr9.json):
// the scale-smoke sweep as a benchmark, gated like the scale tests.
func BenchmarkScale80kPairSweep(b *testing.B) {
	scaleGate(b)
	in := internet80k(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.SamplePairs(PairConfig{
			Kind: PairsTier1, N: 24, Prepend: 3, Seed: 1,
			Workers: runtime.NumCPU(), Batch: 16,
			Shards: 4, MemBudget: 64 << 20,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
