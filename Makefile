GO ?= go

.PHONY: check build test race fuzz-smoke bench lint-panics

# Tier-1 matrix: everything CI gates on.
check: lint-panics
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race ./internal/parallel/ ./internal/routing/
	$(GO) test -run='^$$' -fuzz=FuzzPathCodec -fuzztime=10s ./internal/bgp/

# Sweep workers must return errors, never panic (DESIGN.md §6 "Error
# contract"): non-test code in the gated packages may not call panic().
lint-panics:
	@bad=$$(grep -rn 'panic(' \
		internal/measure internal/relinfer internal/experiment internal/detect internal/defense \
		--include='*.go' --exclude='*_test.go' || true); \
	if [ -n "$$bad" ]; then \
		echo "panic() calls in gated non-test code (return an error instead):"; \
		echo "$$bad"; exit 1; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/parallel/ ./internal/routing/ ./internal/experiment/

fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzPathCodec -fuzztime=10s ./internal/bgp/
	$(GO) test -run='^$$' -fuzz=FuzzDetect -fuzztime=10s ./internal/detect/
	$(GO) test -run='^$$' -fuzz=FuzzSerial2 -fuzztime=10s ./internal/topology/

bench:
	$(GO) test -bench=. -benchmem .
