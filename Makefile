GO ?= go

.PHONY: check build test race fuzz-smoke bench

# Tier-1 matrix: everything CI gates on.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race ./internal/parallel/ ./internal/routing/
	$(GO) test -run='^$$' -fuzz=FuzzPathCodec -fuzztime=10s ./internal/bgp/

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/parallel/ ./internal/routing/ ./internal/experiment/

fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzPathCodec -fuzztime=10s ./internal/bgp/
	$(GO) test -run='^$$' -fuzz=FuzzDetect -fuzztime=10s ./internal/detect/
	$(GO) test -run='^$$' -fuzz=FuzzSerial2 -fuzztime=10s ./internal/topology/

bench:
	$(GO) test -bench=. -benchmem .
