GO ?= go

.PHONY: check build test race fuzz-smoke bench bench-smoke bench-json lint-panics

# Tier-1 matrix: everything CI gates on.
check: lint-panics
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race ./internal/parallel/ ./internal/routing/
	$(GO) test -run='^$$' -fuzz=FuzzPathCodec -fuzztime=10s ./internal/bgp/
	$(MAKE) bench-smoke

# Sweep workers must return errors, never panic (DESIGN.md §6 "Error
# contract"): non-test code in the gated packages may not call panic().
lint-panics:
	@bad=$$(grep -rn 'panic(' \
		internal/measure internal/relinfer internal/experiment internal/detect internal/defense \
		--include='*.go' --exclude='*_test.go' || true); \
	if [ -n "$$bad" ]; then \
		echo "panic() calls in gated non-test code (return an error instead):"; \
		echo "$$bad"; exit 1; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/parallel/ ./internal/routing/ ./internal/experiment/

fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzPathCodec -fuzztime=10s ./internal/bgp/
	$(GO) test -run='^$$' -fuzz=FuzzDetect -fuzztime=10s ./internal/detect/
	$(GO) test -run='^$$' -fuzz=FuzzSerial2 -fuzztime=10s ./internal/topology/

bench:
	$(GO) test -bench=. -benchmem .

# Every benchmark body runs exactly once, so benchmarks compile and execute
# on every `make check` and can never bit-rot. Not a measurement.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Machine-readable record of the tier-1 benchmark suite: run the root
# package benchmarks with -benchmem and parse the output into
# BENCH_pr4.json (benchmark name -> ns/op, B/op, allocs/op; schema in
# EXPERIMENTS.md). The committed file is the baseline future PRs diff
# against, e.g. with benchstat (see README).
bench-json:
	$(GO) test -run='^$$' -bench=. -benchmem . > .bench.out.tmp
	$(GO) run ./tools/benchjson < .bench.out.tmp > BENCH_pr4.json
	@rm -f .bench.out.tmp
	@echo wrote BENCH_pr4.json
