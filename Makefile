GO ?= go

.PHONY: check build test race fuzz-smoke bench bench-smoke bench-json bench-diff scale-smoke serve-smoke lint-panics lint-paths

# Tier-1 matrix: everything CI gates on. The conservation differential
# re-runs explicitly so a counter-attribution regression names itself in
# the CI log instead of hiding inside the package sweep.
check: lint-panics lint-paths
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race ./internal/parallel/ ./internal/routing/
	$(GO) test -run=TestBatchedSweepPropagationConservation -count=1 ./internal/experiment/
	$(GO) test -run='^$$' -fuzz=FuzzPathCodec -fuzztime=10s ./internal/bgp/
	$(MAKE) bench-smoke
	$(MAKE) scale-smoke
	$(MAKE) serve-smoke

# Sweep workers must return errors, never panic (DESIGN.md §6 "Error
# contract"): non-test code in the gated packages may not call panic().
lint-panics:
	@bad=$$(grep -rn 'panic(' \
		internal/measure internal/relinfer internal/experiment internal/detect internal/defense \
		--include='*.go' --exclude='*_test.go' || true); \
	if [ -n "$$bad" ]; then \
		echo "panic() calls in gated non-test code (return an error instead):"; \
		echo "$$bad"; exit 1; \
	fi

# The detection/measurement pipeline is arena-backed (DESIGN.md §5c): hot
# paths pass routing.PathSpan views, not materialized bgp.Path slices.
# Flag fresh path allocations sneaking back into the gated non-test code.
lint-paths:
	@bad=$$(grep -rn -e 'make(bgp\.Path' -e 'append(path' \
		internal/detect internal/measure internal/relinfer \
		--include='*.go' --exclude='*_test.go' || true); \
	if [ -n "$$bad" ]; then \
		echo "path allocations in arena-backed hot paths (use routing.PathArena spans; see DESIGN.md 5c):"; \
		echo "$$bad"; exit 1; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/parallel/ ./internal/routing/ ./internal/core/ ./internal/experiment/ ./internal/measure/ ./internal/serve/

fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzPathCodec -fuzztime=10s ./internal/bgp/
	$(GO) test -run='^$$' -fuzz=FuzzStreamDecoder -fuzztime=10s ./internal/bgp/
	$(GO) test -run='^$$' -fuzz=FuzzDetect -fuzztime=10s ./internal/detect/
	$(GO) test -run='^$$' -fuzz=FuzzSerial2 -fuzztime=10s ./internal/topology/
	$(GO) test -run='^$$' -fuzz='^FuzzPropagateBatch$$' -fuzztime=10s ./internal/routing/
	$(GO) test -run='^$$' -fuzz=FuzzPropagateAttackDeltaBatch -fuzztime=10s ./internal/routing/

# Serving-path smoke (DESIGN §5g): a short self-test replay through the
# sharded pipeline at the default ring depth must lose nothing under the
# block policy, raise alarms, and (without -race) sustain a conservative
# throughput floor. The soak variant re-runs the replay until the memory
# gauges prove a plateau.
serve-smoke:
	$(GO) test -run='TestServeSmoke|TestServeSoakMemoryPlateau' -count=1 ./internal/serve/

bench:
	$(GO) test -bench=. -benchmem .

# Every benchmark body runs exactly once, so benchmarks compile and execute
# on every `make check` and can never bit-rot. Not a measurement. The ./...
# sweep includes the PR 5 arena/detector benchmarks (BenchmarkPathsInto in
# internal/routing, BenchmarkDetectorObserve in internal/detect).
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Internet-scale smoke (DESIGN §5f): a reduced tier-1 pair sweep over the
# canonical internet80k topology through the sharded path, under an
# explicit per-shard cache budget. The test fails if the recorded memory
# gauges exceed the budget, so a working-set regression gates CI.
scale-smoke:
	ASPP_SCALE=1 $(GO) test -run=TestScale80kPairSweepWithinBudget -count=1 .

# Machine-readable record of the tier-1 benchmark suite: run the root
# package benchmarks with -benchmem and parse the output into
# BENCH_pr10.json (benchmark name -> ns/op, B/op, allocs/op, plus custom
# units like p99_ns under "extra"; schema in EXPERIMENTS.md). ASPP_SCALE=1
# ungates the 80k sweep benchmark so the committed record carries the
# Internet-scale entry. The committed file is the baseline future PRs
# diff against, via `benchjson -diff` or benchstat (see README).
bench-json:
	ASPP_SCALE=1 $(GO) test -run='^$$' -bench=. -benchmem . > .bench.out.tmp
	$(GO) run ./tools/benchjson < .bench.out.tmp > BENCH_pr10.json
	@rm -f .bench.out.tmp
	@echo wrote BENCH_pr10.json

# Per-benchmark before/after table plus geomean for the PR 10 record
# (the serving-pipeline benchmarks are new in PR 10, so they appear only
# on the "after" side; the shared rows gate against regressions).
bench-diff:
	$(GO) run ./tools/benchjson -diff BENCH_pr9.json BENCH_pr10.json
