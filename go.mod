module aspp

go 1.22
