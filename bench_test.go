package aspp

// One benchmark per paper table/figure (reduced topology sizes so the
// suite completes quickly), plus the ablation benchmarks DESIGN.md calls
// out: Fast vs Reference engine, survey memoization, and worker fan-out.
// cmd/asppbench regenerates the figures at full scale.

import (
	"runtime"
	"sync"
	"testing"

	"aspp/internal/collector"
	"aspp/internal/experiment"
	"aspp/internal/measure"
	"aspp/internal/routing"
	"aspp/internal/topology"
)

const benchSize = 1000

var (
	benchOnce sync.Once
	benchNet  *Internet
)

func benchInternet(b *testing.B) *Internet {
	b.Helper()
	benchOnce.Do(func() {
		in, err := NewInternet(WithSize(benchSize), WithSeed(1))
		if err != nil {
			panic(err)
		}
		benchNet = in
	})
	return benchNet
}

func benchTier1Pair(b *testing.B, in *Internet) (victim, attacker ASN) {
	b.Helper()
	g := in.Graph()
	v, err := experiment.PickTier1ByDegree(g, 0)
	if err != nil {
		b.Fatal(err)
	}
	m, err := experiment.PickTier1ByDegree(g, 1)
	if err != nil {
		b.Fatal(err)
	}
	return v, m
}

// BenchmarkFig1CaseStudy regenerates the Facebook anomaly (paper Fig. 1).
func BenchmarkFig1CaseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := FacebookCaseStudy(300, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Traceroute regenerates the Table I traceroutes.
func BenchmarkTable1Traceroute(b *testing.B) {
	cs, err := FacebookCaseStudy(300, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		normal, hijacked := cs.Traceroutes(1)
		if len(normal) == 0 || len(hijacked) == 0 {
			b.Fatal("empty traceroute")
		}
	}
}

// BenchmarkFig5Usage runs the monitor-table/update survey (paper Fig. 5;
// Fig. 6's distributions come from the same pass).
func BenchmarkFig5Usage(b *testing.B) {
	in := benchInternet(b)
	cfg := measure.DefaultSurveyConfig()
	cfg.ChurnEvents = 50
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.UsageSurvey(PolicyConfig{}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5MemoOnOff is the (origin, policy) memoization ablation.
func BenchmarkFig5MemoOnOff(b *testing.B) {
	in := benchInternet(b)
	origins, err := collector.AssignOrigins(in.Graph(), collector.DefaultPolicyConfig())
	if err != nil {
		b.Fatal(err)
	}
	for _, memo := range []bool{true, false} {
		name := "memo=off"
		if memo {
			name = "memo=on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := measure.DefaultSurveyConfig()
			cfg.ChurnEvents = 0
			cfg.Memoize = memo
			for i := 0; i < b.N; i++ {
				if _, err := measure.RunSurvey(in.Graph(), origins, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7Tier1Pairs ranks tier-1-on-tier-1 hijacks (paper Fig. 7).
func BenchmarkFig7Tier1Pairs(b *testing.B) {
	in := benchInternet(b)
	for i := 0; i < b.N; i++ {
		if _, err := in.SamplePairs(PairConfig{
			Kind: PairsTier1, N: 40, Prepend: 3, Seed: int64(i + 1),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8RandomPairs ranks random-pair hijacks (paper Fig. 8).
func BenchmarkFig8RandomPairs(b *testing.B) {
	in := benchInternet(b)
	for i := 0; i < b.N; i++ {
		if _, err := in.SamplePairs(PairConfig{
			Kind: PairsRandom, N: 27, Prepend: 3, Seed: int64(i + 1),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9Sweep sweeps λ for a tier-1 pair (paper Fig. 9).
func BenchmarkFig9Sweep(b *testing.B) {
	in := benchInternet(b)
	v, m := benchTier1Pair(b, in)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.SweepPrepend(v, m, 8, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10SweepTier1VsStub sweeps λ for a tier-1 attacker against a
// content-stub victim (paper Fig. 10).
func BenchmarkFig10SweepTier1VsStub(b *testing.B) {
	in := benchInternet(b)
	g := in.Graph()
	attacker, err := experiment.PickTier1ByDegree(g, 0)
	if err != nil {
		b.Fatal(err)
	}
	victim, err := experiment.PickContentStub(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.SweepPrepend(victim, attacker, 8, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11Violate sweeps λ for a stub attacker against a tier-1
// victim with valley-free violation (paper Fig. 11; also the violation-
// handling ablation: the violating pass costs one extra seeded sweep).
func BenchmarkFig11Violate(b *testing.B) {
	in := benchInternet(b)
	g := in.Graph()
	attacker, err := experiment.PickContentStub(g)
	if err != nil {
		b.Fatal(err)
	}
	victim, err := experiment.PickTier1ByDegree(g, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.SweepPrepend(victim, attacker, 8, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12SmallPair sweeps λ for a small-vs-small pair (Fig. 12).
func BenchmarkFig12SmallPair(b *testing.B) {
	in := benchInternet(b)
	g := in.Graph()
	attacker, err := experiment.PickStub(g, 1)
	if err != nil {
		b.Fatal(err)
	}
	victim, err := experiment.PickStub(g, 77)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.SweepPrepend(victim, attacker, 8, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13Detection runs the detection accuracy sweep (Fig. 13).
func BenchmarkFig13Detection(b *testing.B) {
	in := benchInternet(b)
	cfg := DefaultDetectionConfig()
	cfg.MonitorCounts = []int{10, 70, 150}
	cfg.Pairs = 50
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.RunDetection(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13MonitorPolicy is the monitor-placement ablation.
func BenchmarkFig13MonitorPolicy(b *testing.B) {
	in := benchInternet(b)
	for _, policy := range []struct {
		name string
		p    experiment.MonitorPolicy
	}{
		{name: "top-degree", p: MonitorsTopDegree},
		{name: "random", p: MonitorsRandom},
	} {
		b.Run(policy.name, func(b *testing.B) {
			cfg := DefaultDetectionConfig()
			cfg.MonitorCounts = []int{70}
			cfg.Pairs = 40
			cfg.Policy = policy.p
			for i := 0; i < b.N; i++ {
				if _, err := in.RunDetection(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig14DetectionLatency measures the polluted-before-detection
// computation (Fig. 14) on top of the accuracy run.
func BenchmarkFig14DetectionLatency(b *testing.B) {
	in := benchInternet(b)
	cfg := DefaultDetectionConfig()
	cfg.MonitorCounts = []int{150}
	cfg.Pairs = 40
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := in.RunDetection(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(out.PollutedBeforeDetection) == 0 {
			b.Fatal("no latency data")
		}
	}
}

// BenchmarkEngineFastVsReference is the engine ablation: the three-phase
// DAG engine vs the message-level BGP simulation.
func BenchmarkEngineFastVsReference(b *testing.B) {
	cfg := topology.DefaultGenConfig(600)
	cfg.Seed = 5
	g, err := topology.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	victim := g.Tier1s()[0]
	attacker := g.Tier1s()[1]
	ann := routing.Announcement{Origin: victim, Prepend: 3}
	atk := routing.Attacker{AS: attacker}

	b.Run("fast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			base, err := routing.Propagate(g, ann)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := routing.PropagateAttack(g, ann, atk, base); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := routing.PropagateReference(g, ann, &atk); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPairFanout is the worker-pool ablation for pair experiments.
// The multi-worker leg uses GOMAXPROCS workers rather than a fixed count:
// a pool wider than the scheduler's parallelism cannot speed anything up,
// it only adds handoff overhead, and on a single-CPU runner (the PR 4
// baseline was recorded on one — see EXPERIMENTS.md) a fixed workers=4
// leg silently measured serial execution. Each leg reports its effective
// parallelism as the "maxprocs" metric so recorded numbers are
// interpretable later.
func BenchmarkPairFanout(b *testing.B) {
	in := benchInternet(b)
	maxProcs := runtime.GOMAXPROCS(0)
	for _, cs := range []struct {
		name    string
		workers int
	}{
		{"workers=1", 1},
		{"workers=max", maxProcs},
	} {
		b.Run(cs.name, func(b *testing.B) {
			b.ReportMetric(float64(maxProcs), "maxprocs")
			for i := 0; i < b.N; i++ {
				if _, err := in.SamplePairs(PairConfig{
					Kind: PairsRandom, N: 20, Prepend: 3, Seed: 3, Workers: cs.workers,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPropagateReuse is the scratch-reuse ablation at full paper
// scale (n=4000): the same baseline+attack propagation pair with fresh
// allocations every iteration vs a warmed reusable routing.Scratch. The
// reuse leg must report far fewer allocs/op (it is zero after warm-up;
// the acceptance bar is ≥30% fewer than fresh).
func BenchmarkPropagateReuse(b *testing.B) {
	cfg := topology.DefaultGenConfig(4000)
	cfg.Seed = 9
	g, err := topology.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	victim, attacker := g.Tier1s()[0], g.Tier1s()[1]
	ann := routing.Announcement{Origin: victim, Prepend: 3}
	atk := routing.Attacker{AS: attacker}

	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			base, err := routing.Propagate(g, ann)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := routing.PropagateAttack(g, ann, atk, base); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reuse", func(b *testing.B) {
		b.ReportAllocs()
		s := routing.NewScratch()
		base, err := routing.PropagateScratch(g, ann, s)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := routing.PropagateAttackScratch(g, ann, atk, base, s); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			base, err := routing.PropagateScratch(g, ann, s)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := routing.PropagateAttackScratch(g, ann, atk, base, s); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDeltaVsFull is the attack-engine ablation at full paper scale
// (n=4000), shaped like the sweep inner loops: λ = 1..8 attacks against
// per-λ cached baselines on one warmed Scratch, by attackers drawn across
// the tier mix the pair and susceptibility sweeps sample (a tier-1, the
// content stub, a random multihomed stub). The full leg re-propagates the
// whole topology per attack; the delta leg recomputes only the attacker's
// cone, so its advantage tracks the cone size — moderate for a tier-1
// attacker, large for the edge attackers that dominate the sampled
// workloads. The acceptance bar is delta ≥2x faster than full with
// 0 allocs/op once warmed.
func BenchmarkDeltaVsFull(b *testing.B) {
	cfg := topology.DefaultGenConfig(4000)
	cfg.Seed = 9
	g, err := topology.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	victim := g.Tier1s()[0]
	contentStub, err := experiment.PickContentStub(g)
	if err != nil {
		b.Fatal(err)
	}
	randomStub, err := experiment.PickStub(g, 9)
	if err != nil {
		b.Fatal(err)
	}
	attackers := []routing.Attacker{
		{AS: g.Tier1s()[1]},
		{AS: contentStub},
		{AS: randomStub},
	}

	// Per-λ baselines, cloned out of the scratch exactly as the sweep
	// drivers' BaselineCache holds them.
	const maxLambda = 8
	anns := make([]routing.Announcement, maxLambda)
	baselines := make([]*routing.Result, maxLambda)
	s := routing.NewScratch()
	for i := range anns {
		anns[i] = routing.Announcement{Origin: victim, Prepend: i + 1}
		base, err := routing.PropagateScratch(g, anns[i], s)
		if err != nil {
			b.Fatal(err)
		}
		baselines[i] = base.Clone()
	}

	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		if _, err := routing.PropagateAttackScratch(g, anns[0], attackers[0], baselines[0], s); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, atk := range attackers {
				for j := range anns {
					if _, err := routing.PropagateAttackScratch(g, anns[j], atk, baselines[j], s); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	})
	b.Run("delta", func(b *testing.B) {
		b.ReportAllocs()
		if _, err := routing.PropagateAttackDelta(g, anns[0], attackers[0], baselines[0], s); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, atk := range attackers {
				for j := range anns {
					if _, err := routing.PropagateAttackDelta(g, anns[j], atk, baselines[j], s); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	})
}

// BenchmarkPropagate measures one baseline route propagation.
func BenchmarkPropagate(b *testing.B) {
	in := benchInternet(b)
	victim := in.Tier1s()[0]
	ann := Announcement{Origin: victim, Prepend: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Propagate(ann); err != nil {
			b.Fatal(err)
		}
	}
}
